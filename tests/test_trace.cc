/**
 * @file
 * The superblock/trace tier's one contract: it must be invisible.
 * Architectural state, PMU counts, interrupt delivery, fault-plan
 * behaviour and every canned study's CSV must be byte-identical with
 * the tier on and off — serial or parallel — while the per-reason
 * escape counters show that call/ret and time reads actually fold
 * into the decoded engine. Plus unit tests of the trace builder
 * (closing branches, macro-op fusion, per-pass accounting totals).
 */

#include <cstdlib>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/factor_space.hh"
#include "core/study.hh"
#include "cpu/trace.hh"
#include "harness/harness.hh"
#include "harness/machine.hh"
#include "harness/microbench.hh"
#include "isa/assembler.hh"
#include "isa/program.hh"
#include "obs/spc.hh"

using namespace pca;
using namespace pca::harness;

// ---------------------------------------------------------------- //
// Trace-builder unit tests
// ---------------------------------------------------------------- //

namespace
{

/** Linked single-block counted loop (movImm; add/cmp/jne; halt). */
isa::Program
linkLoop(Count iters)
{
    isa::Assembler a("main");
    a.movImm(isa::Reg::Eax, 0);
    int loop = a.label();
    a.addImm(isa::Reg::Eax, 1)
        .cmpImm(isa::Reg::Eax, static_cast<std::int64_t>(iters))
        .jne(loop)
        .halt();
    isa::Program p;
    p.add(a.take());
    p.link2(/*user_base=*/0x1000, /*kernel_base=*/0x100000);
    return p;
}

cpu::TraceGeometry
flatGeometry()
{
    cpu::TraceGeometry g;
    g.windowShift = 4;
    g.lineShift = 6;
    g.pageShift = 12;
    return g;
}

} // namespace

TEST(SuperblockBuilder, CountedLoopFormsFusedClosingTrace)
{
    const isa::Program p = linkLoop(100);
    cpu::Superblock sb;
    // The loop head is decoded index 1 (the addImm after movImm).
    buildSuperblock(p.decoded(0), 0, 1, flatGeometry(), sb);
    ASSERT_TRUE(sb.ok);

    // add; cmp+jne fused: two elements, the second closing.
    ASSERT_EQ(sb.code.size(), 2u);
    EXPECT_EQ(sb.code[0].kind, cpu::TkAddImm);
    EXPECT_EQ(sb.code[1].kind, cpu::TkFused);
    EXPECT_NE(sb.code[1].flags & cpu::TiClosing, 0);
    EXPECT_NE(sb.code[1].flags & cpu::TiBackward, 0);

    // Per-pass accounting: 3 retired (fused counts both halves), one
    // branch, one predictor lookup; no memory ops -> resident.
    EXPECT_EQ(sb.passRetired, 3u);
    EXPECT_EQ(sb.passBranches, 1u);
    EXPECT_EQ(sb.passConds, 1u);
    EXPECT_TRUE(sb.residentEligible);
    EXPECT_FALSE(sb.anyUnsafe);
}

TEST(SuperblockBuilder, EscapeInBodyRejectsTrace)
{
    isa::Assembler a("main");
    a.movImm(isa::Reg::Esi, 0);
    int loop = a.label();
    a.rdtsc() // foldable escape: ends trace growth before closing
        .addImm(isa::Reg::Esi, 1)
        .cmpImm(isa::Reg::Esi, 10)
        .jne(loop)
        .halt();
    isa::Program p;
    p.add(a.take());
    p.link2(0x1000, 0x100000);

    cpu::Superblock sb;
    buildSuperblock(p.decoded(0), 0, 1, flatGeometry(), sb);
    EXPECT_FALSE(sb.ok);
    EXPECT_TRUE(sb.code.empty());
}

TEST(SuperblockBuilder, MemoryOpsDisableResidentPasses)
{
    isa::Assembler a("main");
    a.movImm(isa::Reg::Eax, 0);
    int loop = a.label();
    a.load(isa::Reg::Ebx, isa::Reg::Esp, 0)
        .addImm(isa::Reg::Eax, 1)
        .cmpImm(isa::Reg::Eax, 10)
        .jne(loop)
        .halt();
    isa::Program p;
    p.add(a.take());
    p.link2(0x1000, 0x100000);

    cpu::Superblock sb;
    buildSuperblock(p.decoded(0), 0, 1, flatGeometry(), sb);
    ASSERT_TRUE(sb.ok);
    EXPECT_FALSE(sb.residentEligible);
    EXPECT_EQ(sb.passRetired, 4u);
}

TEST(SuperblockBuilder, DispatchKindIsNamed)
{
    const std::string kind = cpu::dispatchKindName();
    EXPECT_TRUE(kind == "threaded" || kind == "switch") << kind;
}

// ---------------------------------------------------------------- //
// Machine-level identity, interrupts live
// ---------------------------------------------------------------- //

namespace
{

/** Digest of a full run: results plus every raw event counter. */
std::string
digestOf(Machine &m)
{
    const cpu::RunResult r = m.run();
    std::ostringstream os;
    os << r.userInstr << '/' << r.kernelInstr << '/' << r.cycles
       << '/' << r.interrupts << '/' << r.fastForwardedIters;
    for (std::size_t e = 0; e < cpu::numEvents; ++e)
        for (auto mode : {Mode::User, Mode::Kernel})
            os << '/'
               << m.core().rawEvents(static_cast<cpu::EventType>(e),
                                     mode);
    return os.str();
}

/** Counted loop on a full machine (interrupts on by default). */
std::string
loopDigest(bool decode, bool trace, Count iters)
{
    MachineConfig cfg;
    cfg.processor = cpu::Processor::PentiumD;
    cfg.iface = Interface::Pc;
    cfg.decodeCache = decode;
    cfg.traceTier = trace;
    Machine m(cfg);
    isa::Assembler a("main");
    a.movImm(isa::Reg::Eax, 0);
    int loop = a.label();
    a.addImm(isa::Reg::Eax, 1)
        .cmpImm(isa::Reg::Eax, static_cast<std::int64_t>(iters))
        .jne(loop)
        .halt();
    m.addUserBlock(a.take());
    m.finalize();
    return digestOf(m);
}

/**
 * Call-heavy loop: every iteration calls a leaf (so the decoded
 * return-address stack is live in nearly every dispatch) and reads
 * the TSC (so the time-read fold runs under batched state). The
 * counter lives in Esi because rdtsc writes Eax.
 */
std::string
callLoopDigest(bool decode, bool trace, Count iters,
               bool interrupts = true)
{
    MachineConfig cfg;
    cfg.processor = cpu::Processor::PentiumD;
    cfg.iface = Interface::Pc;
    cfg.interruptsEnabled = interrupts;
    cfg.decodeCache = decode;
    cfg.traceTier = trace;
    Machine m(cfg);
    {
        isa::Assembler fn("leaf");
        fn.addImm(isa::Reg::Ebx, 1).ret();
        m.addUserBlock(fn.take());
    }
    isa::Assembler a("main");
    a.movImm(isa::Reg::Esi, 0);
    int loop = a.label();
    a.call("leaf")
        .rdtsc()
        .addImm(isa::Reg::Esi, 1)
        .cmpImm(isa::Reg::Esi, static_cast<std::int64_t>(iters))
        .jne(loop)
        .halt();
    m.addUserBlock(a.take());
    m.finalize();
    return digestOf(m);
}

} // namespace

TEST(TraceTierCore, InterruptDeliveryIdentical)
{
    // Long enough that superblocks form, resident passes engage, and
    // many interrupts land mid-trace. The tier must break dispatch at
    // exactly the cycles the per-step interpreter polls.
    const std::string legacy = loopDigest(false, false, 200000);
    EXPECT_EQ(loopDigest(true, false, 200000), legacy);
    EXPECT_EQ(loopDigest(true, true, 200000), legacy);
}

TEST(TraceTierCore, ReturnStackIdenticalUnderInterrupts)
{
    // Interrupts deliver between dispatches while the folded call/ret
    // path keeps the core's call stack live; the fold must leave the
    // stack exactly as legacy stepping would at every poll point.
    const std::string off = callLoopDigest(true, false, 30000);
    const std::string on = callLoopDigest(true, true, 30000);
    EXPECT_EQ(on, off);
    EXPECT_EQ(callLoopDigest(false, false, 30000), off);
}

TEST(TraceTierCore, TimeReadFoldIdenticalInterruptsOff)
{
    // With interrupts off the whole run is one long dispatch chain:
    // every rdtsc must still observe fully-retired state.
    const std::string off = callLoopDigest(true, false, 30000, false);
    EXPECT_EQ(callLoopDigest(true, true, 30000, false), off);
}

TEST(TraceTierCore, EscapesFoldAwayAndRebootReforms)
{
    obs::spcReset();
    obs::spcAttach("all");

    MachineConfig cfg;
    cfg.processor = cpu::Processor::AthlonX2;
    cfg.iface = Interface::Pm;
    cfg.interruptsEnabled = false;
    cfg.fastForward = false;
    cfg.decodeCache = true;
    cfg.traceTier = true;
    Machine m(cfg);
    {
        isa::Assembler fn("leaf");
        fn.addImm(isa::Reg::Ebx, 1).ret();
        m.addUserBlock(fn.take());
    }
    isa::Assembler a("main");
    a.movImm(isa::Reg::Esi, 0);
    int warm = a.label();
    a.addImm(isa::Reg::Esi, 1)
        .cmpImm(isa::Reg::Esi, 1000)
        .jne(warm);
    a.movImm(isa::Reg::Esi, 0);
    int loop = a.label();
    a.call("leaf")
        .rdtsc()
        .addImm(isa::Reg::Esi, 1)
        .cmpImm(isa::Reg::Esi, 1000)
        .jne(loop)
        .halt();
    m.addUserBlock(a.take());
    m.finalize();

    const std::string first = digestOf(m);
    const Count formed = obs::spcValue(obs::Spc::SuperblocksFormed);
    EXPECT_GE(formed, 1u);
    // Call/ret and rdtsc fold into the decoded engine: no legacy
    // fallbacks for them. The only "other" escape is the final halt.
    EXPECT_EQ(obs::spcValue(obs::Spc::DecodedEscapeCallret), 0u);
    EXPECT_EQ(obs::spcValue(obs::Spc::DecodedEscapeTimeread), 0u);
    EXPECT_EQ(obs::spcValue(obs::Spc::DecodedEscapeSyscall), 0u);

    // Power-on reset drops the trace cache: the rebooted machine must
    // re-form (and re-count) its superblocks, and produce the same
    // digest as the first boot.
    m.reboot(cfg.seed);
    EXPECT_EQ(digestOf(m), first);
    EXPECT_GT(obs::spcValue(obs::Spc::SuperblocksFormed), formed);

    obs::spcReset();
}

TEST(TraceTierCore, EscapeCountersTellTiersApart)
{
    obs::spcReset();
    obs::spcAttach("all");

    MachineConfig cfg;
    cfg.processor = cpu::Processor::AthlonX2;
    cfg.iface = Interface::Pm;
    cfg.interruptsEnabled = false;
    cfg.fastForward = false;
    cfg.decodeCache = true;
    cfg.traceTier = false; // block engine: call/ret/rdtsc escape
    Machine m(cfg);
    {
        isa::Assembler fn("leaf");
        fn.addImm(isa::Reg::Ebx, 1).ret();
        m.addUserBlock(fn.take());
    }
    isa::Assembler a("main");
    a.movImm(isa::Reg::Esi, 0);
    int loop = a.label();
    a.call("leaf")
        .rdtsc()
        .addImm(isa::Reg::Esi, 1)
        .cmpImm(isa::Reg::Esi, 500)
        .jne(loop)
        .halt();
    m.addUserBlock(a.take());
    m.finalize();
    m.run();

    // call + ret per iteration, one rdtsc per iteration.
    EXPECT_EQ(obs::spcValue(obs::Spc::DecodedEscapeCallret), 1000u);
    EXPECT_EQ(obs::spcValue(obs::Spc::DecodedEscapeTimeread), 500u);
    obs::spcReset();
}

// ---------------------------------------------------------------- //
// Canned studies: byte-identical CSV across tiers
// ---------------------------------------------------------------- //

namespace
{

/**
 * Run @p study with the execution tier chosen by env (the switch the
 * whole study pipeline reads); return its CSV.
 */
template <typename StudyFn>
std::string
csvWithTier(bool decode, bool trace, int threads, StudyFn &&study)
{
    setenv("PCA_DECODE", decode ? "1" : "0", 1);
    setenv("PCA_TRACE_TIER", trace ? "1" : "0", 1);
    setenv("PCA_THREADS", std::to_string(threads).c_str(), 1);
    const core::DataTable table = study();
    unsetenv("PCA_THREADS");
    unsetenv("PCA_TRACE_TIER");
    unsetenv("PCA_DECODE");
    std::ostringstream os;
    table.writeCsv(os);
    return os.str();
}

/** All tier points: trace, block-only, legacy. */
template <typename StudyFn>
void
expectTiersIdentical(StudyFn &&study)
{
    for (const int threads : {1, 4}) {
        const std::string ref = csvWithTier(true, true, threads, study);
        EXPECT_EQ(csvWithTier(true, false, threads, study), ref)
            << "block vs trace, threads=" << threads;
        EXPECT_EQ(csvWithTier(false, false, threads, study), ref)
            << "legacy vs trace, threads=" << threads;
    }
}

} // namespace

TEST(TraceTierStudies, NullErrorStudyByteIdentical)
{
    const auto points = core::FactorSpace()
                            .processors({cpu::Processor::Core2Duo,
                                         cpu::Processor::PentiumD})
                            .optLevels({2})
                            .counterCounts({1, 2})
                            .generate();
    ASSERT_FALSE(points.empty());
    core::StudyObsOptions obs;
    obs.attributionColumns = true;
    expectTiersIdentical(
        [&] { return core::runNullErrorStudy(points, 3, 42, obs); });
}

TEST(TraceTierStudies, DurationStudyByteIdentical)
{
    core::DurationStudyOptions opt;
    opt.processors = {cpu::Processor::Core2Duo,
                      cpu::Processor::PentiumD};
    opt.loopSizes = {1, 1000, 5000};
    opt.runsPerSize = 2;
    expectTiersIdentical([&] { return core::runDurationStudy(opt); });
}

TEST(TraceTierStudies, CycleStudyByteIdentical)
{
    core::CycleStudyOptions opt;
    opt.processors = {cpu::Processor::Core2Duo};
    opt.loopSizes = {1, 1000};
    opt.optLevels = {0, 3};
    opt.runsPerConfig = 2;
    expectTiersIdentical([&] { return core::runCycleStudy(opt); });
}

TEST(TraceTierStudies, FaultPlanByteIdentical)
{
    // A live fault plan exercises retries, degraded rows, and
    // counter-width wraps; the trace tier must be invisible there too
    // (faults act on the PMU and kernel, not instruction dispatch),
    // and fault-plan perturbations must never alias cached programs
    // across tiers (the ProgramCache key carries both).
    setenv("PCA_FAULTS", "seed=7,rate=0.05,width=48", 1);
    const auto points = core::FactorSpace()
                            .processors({cpu::Processor::Core2Duo})
                            .optLevels({2})
                            .counterCounts({1, 2})
                            .generate();
    auto study = [&] {
        return core::runNullErrorStudy(points, 3, 42,
                                       core::StudyObsOptions{});
    };
    const std::string on = csvWithTier(true, true, 4, study);
    const std::string block = csvWithTier(true, false, 4, study);
    unsetenv("PCA_FAULTS");
    EXPECT_EQ(on, block);
}
