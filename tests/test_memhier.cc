/**
 * @file
 * Tests for the data-side memory hierarchy (L1D, unified L2, D-TLB)
 * and the Korn-style micro-benchmarks' analytical event models.
 */

#include <gtest/gtest.h>

#include "harness/harness.hh"
#include "harness/machine.hh"
#include "harness/microbench.hh"
#include "isa/assembler.hh"

namespace pca::cpu
{
namespace
{

using harness::AccessPattern;
using harness::ArrayWalkBench;
using harness::CountingMode;
using harness::HarnessConfig;
using harness::Interface;
using harness::LinearBench;
using harness::Machine;
using harness::MachineConfig;
using harness::MeasurementHarness;
using isa::Assembler;
using isa::Reg;

MachineConfig
quiet(Processor proc = Processor::AthlonX2)
{
    MachineConfig cfg;
    cfg.processor = proc;
    cfg.iface = Interface::Pm;
    cfg.interruptsEnabled = false;
    return cfg;
}

TEST(MemHier, ColdLoadMissesEverything)
{
    Machine m(quiet());
    Assembler a("main");
    a.movImm(Reg::Esi, 0x20000000).load(Reg::Ebx, Reg::Esi, 0).halt();
    m.addUserBlock(a.take());
    m.finalize();
    m.run();
    EXPECT_EQ(m.core().rawEvents(EventType::DcacheMiss, Mode::User),
              1u);
    EXPECT_EQ(m.core().rawEvents(EventType::L2Miss, Mode::User),
              1u + m.core().rawEvents(EventType::IcacheMiss,
                                      Mode::User));
    EXPECT_EQ(m.core().rawEvents(EventType::DtlbMiss, Mode::User),
              1u);
}

TEST(MemHier, WarmLoadHits)
{
    Machine m(quiet());
    Assembler a("main");
    a.movImm(Reg::Esi, 0x20000000)
        .load(Reg::Ebx, Reg::Esi, 0)
        .load(Reg::Ebx, Reg::Esi, 8)  // same line
        .load(Reg::Ebx, Reg::Esi, 32) // same line
        .halt();
    m.addUserBlock(a.take());
    m.finalize();
    m.run();
    EXPECT_EQ(m.core().rawEvents(EventType::DcacheMiss, Mode::User),
              1u);
    EXPECT_EQ(m.core().rawEvents(EventType::DcacheAccess, Mode::User),
              3u);
}

TEST(MemHier, L1MissL2HitAfterEviction)
{
    // K8 L1D: 512 sets, 2 ways, 64B lines. Three lines mapping to
    // the same set evict the first from L1 but it stays in L2.
    Machine m(quiet(Processor::AthlonX2));
    const std::int64_t way_stride = 512 * 64; // one L1 "way" apart
    Assembler a("main");
    a.movImm(Reg::Esi, 0x20000000);
    for (int i = 0; i < 3; ++i)
        a.load(Reg::Ebx, Reg::Esi, i * way_stride);
    a.load(Reg::Ebx, Reg::Esi, 0); // L1 miss (evicted), L2 hit
    a.halt();
    m.addUserBlock(a.take());
    m.finalize();
    m.run();
    EXPECT_EQ(m.core().rawEvents(EventType::DcacheMiss, Mode::User),
              4u);
    // Only the three cold misses reached memory.
    const auto icache_l2 =
        m.core().rawEvents(EventType::IcacheMiss, Mode::User);
    EXPECT_EQ(m.core().rawEvents(EventType::L2Miss, Mode::User),
              3u + icache_l2);
}

TEST(MemHier, DcacheMissPenaltyVisibleInCycles)
{
    auto cycles_for = [](int stride) {
        Machine m(quiet());
        Assembler a("main");
        a.movImm(Reg::Esi, 0x20000000).movImm(Reg::Eax, 0);
        int loop = a.label();
        a.load(Reg::Ebx, Reg::Esi, 0)
            .addImm(Reg::Esi, stride)
            .addImm(Reg::Eax, 1)
            .cmpImm(Reg::Eax, 2000)
            .jne(loop)
            .halt();
        m.addUserBlock(a.take());
        m.finalize();
        return m.run().cycles;
    };
    // A 64-byte stride misses every load; an 8-byte stride one in 8.
    EXPECT_GT(cycles_for(64), cycles_for(8) + 2000u * 12u / 2u);
}

TEST(MemHier, StackTrafficStaysCached)
{
    Machine m(quiet());
    Assembler a("main");
    a.movImm(Reg::Eax, 7);
    for (int i = 0; i < 50; ++i)
        a.push(Reg::Eax).pop(Reg::Ebx);
    a.halt();
    m.addUserBlock(a.take());
    m.finalize();
    m.run();
    // 100 accesses, but only the first touches a cold line.
    EXPECT_EQ(m.core().rawEvents(EventType::DcacheAccess, Mode::User),
              100u);
    EXPECT_LE(m.core().rawEvents(EventType::DcacheMiss, Mode::User),
              2u);
}

TEST(KornModels, LinearBenchInstructionAndIcacheModel)
{
    const LinearBench bench(4096);
    const auto &k8 = microArch(Processor::AthlonX2);
    EXPECT_EQ(bench.expectedInstructions(), 4096u);
    EXPECT_EQ(*bench.expectedEvents(EventType::IcacheMiss, k8), 64u);
    EXPECT_EQ(*bench.expectedEvents(EventType::ItlbMiss, k8), 1u);
    EXPECT_FALSE(
        bench.expectedEvents(EventType::BrInstRetired, k8));
}

TEST(KornModels, ArrayWalkModels)
{
    const auto &k8 = microArch(Processor::AthlonX2);
    const ArrayWalkBench walk(1024, 16);
    EXPECT_EQ(*walk.expectedEvents(EventType::DcacheAccess, k8),
              1024u);
    // 1024 * 16B = 16 KiB = 256 lines = 4 pages.
    EXPECT_EQ(*walk.expectedEvents(EventType::DcacheMiss, k8), 256u);
    EXPECT_EQ(*walk.expectedEvents(EventType::DtlbMiss, k8), 4u);

    const ArrayWalkBench big_stride(64, 4096);
    EXPECT_EQ(*big_stride.expectedEvents(EventType::DcacheMiss, k8),
              64u);
    EXPECT_EQ(*big_stride.expectedEvents(EventType::DtlbMiss, k8),
              64u);
}

TEST(KornModels, MeasuredIcacheMissesMatchLinearModel)
{
    HarnessConfig cfg;
    cfg.processor = Processor::AthlonX2;
    cfg.iface = Interface::Pm;
    cfg.pattern = AccessPattern::ReadRead;
    cfg.mode = CountingMode::User;
    cfg.primaryEvent = EventType::IcacheMiss;
    cfg.interruptsEnabled = false;
    const LinearBench bench(8192);
    const auto m = MeasurementHarness(cfg).measure(bench);
    const auto expected = *bench.expectedEvents(
        EventType::IcacheMiss, microArch(Processor::AthlonX2));
    EXPECT_NEAR(static_cast<double>(m.delta()),
                static_cast<double>(expected), 3.0);
}

TEST(KornModels, MeasuredDcacheMissesMatchWalkModel)
{
    HarnessConfig cfg;
    cfg.processor = Processor::Core2Duo;
    cfg.iface = Interface::Pm;
    cfg.pattern = AccessPattern::ReadRead;
    cfg.mode = CountingMode::User;
    cfg.primaryEvent = EventType::DcacheMiss;
    cfg.interruptsEnabled = false;
    const ArrayWalkBench bench(2048, 64);
    const auto m = MeasurementHarness(cfg).measure(bench);
    EXPECT_NEAR(static_cast<double>(m.delta()), 2048.0, 4.0);
}

TEST(KornModels, MeasuredDtlbMissesMatchWalkModel)
{
    HarnessConfig cfg;
    cfg.processor = Processor::PentiumD;
    cfg.iface = Interface::Pm;
    cfg.pattern = AccessPattern::ReadRead;
    cfg.mode = CountingMode::User;
    cfg.primaryEvent = EventType::DtlbMiss;
    cfg.interruptsEnabled = false;
    const ArrayWalkBench bench(256, 4096);
    const auto m = MeasurementHarness(cfg).measure(bench);
    EXPECT_NEAR(static_cast<double>(m.delta()), 256.0, 3.0);
}

TEST(KornModels, LinearBenchRejectsZero)
{
    EXPECT_THROW(LinearBench(0), std::logic_error);
}

} // namespace
} // namespace pca::cpu
