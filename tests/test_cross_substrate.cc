/**
 * @file
 * Cross-substrate property tests: the same workload measured through
 * perfctr, perfmon2, and perf_event must agree on the architecture's
 * ground truth — all differences must be attributable to each
 * interface's own overhead.
 */

#include <gtest/gtest.h>

#include "harness/machine.hh"
#include "isa/assembler.hh"
#include "perfctr/libperfctr.hh"
#include "perfevent/libperf.hh"
#include "perfmon/libpfm.hh"

namespace pca
{
namespace
{

using harness::Interface;
using harness::Machine;
using harness::MachineConfig;
using isa::Assembler;
using isa::Reg;

enum class Substrate
{
    Perfctr,
    Perfmon,
    PerfEvent,
};

const char *
substrateName(Substrate s)
{
    switch (s) {
      case Substrate::Perfctr: return "perfctr";
      case Substrate::Perfmon: return "perfmon2";
      case Substrate::PerfEvent: return "perf_event";
    }
    return "?";
}

struct WorkloadCounts
{
    Count instructions = 0;
    Count branches = 0;
};

/**
 * Count a 1000-iteration loop's user-mode instructions and branches
 * through the given substrate, with the capture points bracketing
 * the loop (read ... loop ... read).
 */
WorkloadCounts
countLoop(Substrate sub, cpu::Processor proc)
{
    MachineConfig mc;
    mc.processor = proc;
    mc.interruptsEnabled = false;
    mc.usePerfEvent = sub == Substrate::PerfEvent;
    mc.iface = sub == Substrate::Perfctr ? Interface::Pc
                                         : Interface::Pm;
    Machine m(mc);

    std::vector<Count> c0, c1;
    Assembler a("main");
    const std::vector<cpu::EventType> events = {
        cpu::EventType::InstrRetired, cpu::EventType::BrInstRetired};

    auto emit_loop = [&a]() {
        a.movImm(Reg::Eax, 0);
        int loop = a.label();
        a.addImm(Reg::Eax, 1).cmpImm(Reg::Eax, 1000).jne(loop);
    };

    switch (sub) {
      case Substrate::Perfctr:
      {
        perfctr::LibPerfctr &lib = *m.libPerfctr();
        perfctr::ControlSpec spec;
        spec.events = events;
        spec.pl = PlMask::User;
        lib.emitOpen(a);
        lib.emitControl(a, spec);
        lib.emitRead(a, spec,
                     [&c0](const std::vector<Count> &v, Count) {
                         c0 = v;
                     });
        emit_loop();
        lib.emitRead(a, spec,
                     [&c1](const std::vector<Count> &v, Count) {
                         c1 = v;
                     });
        break;
      }
      case Substrate::Perfmon:
      {
        perfmon::LibPfm &lib = *m.libPfm();
        perfmon::PfmSpec spec;
        spec.events = events;
        spec.pl = PlMask::User;
        lib.emitInitialize(a);
        lib.emitCreateContext(a);
        lib.emitWritePmcs(a, spec);
        lib.emitWritePmds(a, spec);
        lib.emitStart(a);
        lib.emitRead(a, spec, [&c0](const std::vector<Count> &v) {
            c0 = v;
        });
        emit_loop();
        lib.emitRead(a, spec, [&c1](const std::vector<Count> &v) {
            c1 = v;
        });
        break;
      }
      case Substrate::PerfEvent:
      {
        perfevent::LibPerf &lib = *m.libPerf();
        perfevent::PerfSpec spec;
        spec.events = events;
        spec.pl = PlMask::User;
        lib.emitOpenAll(a, spec);
        lib.emitEnable(a);
        lib.emitReadFast(a, 2, [&c0](const std::vector<Count> &v) {
            c0 = v;
        });
        emit_loop();
        lib.emitReadFast(a, 2, [&c1](const std::vector<Count> &v) {
            c1 = v;
        });
        break;
      }
    }
    a.halt();
    m.addUserBlock(a.take());
    m.finalize();
    m.run();

    WorkloadCounts out;
    out.instructions = c1.at(0) - c0.at(0);
    out.branches = c1.at(1) - c0.at(1);
    return out;
}

class CrossSubstrate
    : public testing::TestWithParam<
          std::tuple<Substrate, cpu::Processor>>
{
};

TEST_P(CrossSubstrate, LoopInstructionsWithinOverheadBound)
{
    const auto [sub, proc] = GetParam();
    const auto counts = countLoop(sub, proc);
    // 3001 loop instructions + the second read's head (< 450 user
    // instructions on every substrate).
    EXPECT_GE(counts.instructions, 3001u);
    EXPECT_LT(counts.instructions, 3001u + 450u);
}

TEST_P(CrossSubstrate, BranchCountsAreExactPlusReadBranches)
{
    const auto [sub, proc] = GetParam();
    const auto counts = countLoop(sub, proc);
    // 1000 loop branches; the read paths contain at most a handful
    // of branches (retry loop back-edges are not taken on a quiet
    // machine).
    EXPECT_GE(counts.branches, 1000u);
    EXPECT_LT(counts.branches, 1010u);
}

TEST_P(CrossSubstrate, DeterministicAcrossRuns)
{
    const auto [sub, proc] = GetParam();
    const auto a = countLoop(sub, proc);
    const auto b = countLoop(sub, proc);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.branches, b.branches);
}

INSTANTIATE_TEST_SUITE_P(
    AllSubstratesAndProcessors, CrossSubstrate,
    testing::Combine(testing::Values(Substrate::Perfctr,
                                     Substrate::Perfmon,
                                     Substrate::PerfEvent),
                     testing::Values(cpu::Processor::PentiumD,
                                     cpu::Processor::Core2Duo,
                                     cpu::Processor::AthlonX2)),
    [](const testing::TestParamInfo<
        std::tuple<Substrate, cpu::Processor>> &info) {
        return std::string(substrateName(std::get<0>(info.param))) +
            "_" + cpu::processorCode(std::get<1>(info.param));
    });

/** User-mode ground truth is substrate independent. */
TEST(CrossSubstrateInvariants, UserInstructionTruthAgrees)
{
    for (auto proc : cpu::allProcessors()) {
        const auto pc_counts = countLoop(Substrate::Perfctr, proc);
        const auto pm_counts = countLoop(Substrate::Perfmon, proc);
        const auto pe_counts = countLoop(Substrate::PerfEvent, proc);
        // All within each other's overhead envelope.
        const Count lo = 3001;
        for (Count v :
             {pc_counts.instructions, pm_counts.instructions,
              pe_counts.instructions}) {
            EXPECT_GE(v, lo);
            EXPECT_LT(v - lo, 450u);
        }
    }
}

} // namespace
} // namespace pca
