/**
 * @file
 * Unit tests for the micro-architectural structures: cache model,
 * branch predictor, and front-end fetch model.
 */

#include <gtest/gtest.h>

#include "cpu/cache.hh"
#include "cpu/frontend.hh"
#include "cpu/microarch.hh"
#include "cpu/predictor.hh"

namespace pca::cpu
{
namespace
{

TEST(Cache, MissThenHit)
{
    CacheModel c(64, 2, 64);
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x103f)); // same line
    EXPECT_FALSE(c.access(0x1040)); // next line
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, LruEviction)
{
    CacheModel c(1, 2, 64); // one set, two ways
    c.access(0x0000);
    c.access(0x1000);
    c.access(0x0000);      // refresh line 0
    c.access(0x2000);      // evicts 0x1000 (LRU)
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_TRUE(c.contains(0x2000));
}

TEST(Cache, SetIndexingSeparatesLines)
{
    CacheModel c(4, 1, 64);
    // These map to different sets: no conflict.
    c.access(0 * 64);
    c.access(1 * 64);
    c.access(2 * 64);
    c.access(3 * 64);
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(3 * 64));
    // Same set as line 0 in a 4-set direct-mapped cache.
    c.access(4 * 64);
    EXPECT_FALSE(c.contains(0));
}

TEST(Cache, FlushInvalidates)
{
    CacheModel c(8, 2, 64);
    c.access(0x40);
    c.flush();
    EXPECT_FALSE(c.contains(0x40));
}

TEST(Cache, TlbGeometryWorks)
{
    CacheModel tlb(1, 32, 4096); // fully associative, 32 entries
    for (Addr p = 0; p < 32; ++p)
        EXPECT_FALSE(tlb.access(p * 4096));
    for (Addr p = 0; p < 32; ++p)
        EXPECT_TRUE(tlb.access(p * 4096));
    EXPECT_FALSE(tlb.access(32 * 4096)); // evicts page 0 (LRU)
    EXPECT_FALSE(tlb.contains(0));
}

TEST(Predictor, LoopBranchWarmsUp)
{
    BranchPredictor bp(512, 4);
    // First taken: predicted not-taken (weak init) -> mispredict.
    EXPECT_TRUE(bp.predictAndTrain(0x1000, true));
    // Second taken: counter now at 2 -> predicted taken, but only
    // warmed BTB: should be correct now.
    EXPECT_FALSE(bp.predictAndTrain(0x1000, true));
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(bp.predictAndTrain(0x1000, true));
    // Loop exit mispredicts once.
    EXPECT_TRUE(bp.predictAndTrain(0x1000, false));
}

TEST(Predictor, NotTakenBranchPredictsWell)
{
    BranchPredictor bp(512, 4);
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(bp.predictAndTrain(0x2000, false));
    EXPECT_EQ(bp.mispredicts(), 0u);
}

TEST(Predictor, ResetForgets)
{
    BranchPredictor bp(512, 4);
    bp.predictAndTrain(0x1000, true);
    bp.predictAndTrain(0x1000, true);
    bp.reset();
    EXPECT_TRUE(bp.predictAndTrain(0x1000, true));
    EXPECT_EQ(bp.mispredicts(), 1u);
    EXPECT_EQ(bp.lookups(), 1u);
}

/** Cycles for one steady-state loop iteration at a given placement. */
Cycles
loopIterCycles(const MicroArch &arch, Addr body_addr)
{
    FrontEnd fe(arch);
    // Loop body: add(3B) cmp(5B) jne(2B), branch back to body_addr.
    const Addr add = body_addr, cmp = body_addr + 3,
               jne = body_addr + 8;
    Cycles last = 0;
    // Warm up, then measure one iteration.
    for (int iter = 0; iter < 6; ++iter) {
        Cycles c = 0;
        c += fe.onInst(add, 3);
        c += fe.onInst(cmp, 5);
        c += fe.onInst(jne, 2);
        c += fe.onTakenBranch(jne, jne + 2, add);
        last = c;
    }
    return last;
}

TEST(FrontEndTest, K8LoopIsTwoOrThreeCyclesPerIteration)
{
    const auto &k8 = microArch(Processor::AthlonX2);
    bool saw2 = false, saw3 = false;
    for (Addr off = 0; off < 16; ++off) {
        const Cycles c = loopIterCycles(k8, 0x08048100 + off);
        EXPECT_GE(c, 2u);
        EXPECT_LE(c, 3u);
        saw2 |= c == 2;
        saw3 |= c == 3;
    }
    // Both modes of Figure 11 must be reachable by placement alone.
    EXPECT_TRUE(saw2);
    EXPECT_TRUE(saw3);
}

TEST(FrontEndTest, K8AlignedLoopTakesTwoCycles)
{
    const auto &k8 = microArch(Processor::AthlonX2);
    EXPECT_EQ(loopIterCycles(k8, 0x08048100), 2u);
}

TEST(FrontEndTest, K8SplitLoopTakesThreeCycles)
{
    const auto &k8 = microArch(Processor::AthlonX2);
    // Body at offset 10 mod 16: cmp crosses the fetch window.
    EXPECT_EQ(loopIterCycles(k8, 0x0804810a), 3u);
}

TEST(FrontEndTest, Core2LsdGivesOneCyclePerIteration)
{
    const auto &cd = microArch(Processor::Core2Duo);
    // Body comfortably inside one 64-byte line.
    EXPECT_EQ(loopIterCycles(cd, 0x08048100), 1u);
}

TEST(FrontEndTest, Core2LineCrossingDisablesLsd)
{
    const auto &cd = microArch(Processor::Core2Duo);
    // Body at offset 58 mod 64 crosses the i-cache line: no LSD.
    const Cycles c = loopIterCycles(cd, 0x08048100 + 58);
    EXPECT_GT(c, 1u);
}

TEST(FrontEndTest, PentiumDRangeCoversPaperSpread)
{
    const auto &pd = microArch(Processor::PentiumD);
    // Measure average over many iterations (replay alternates).
    auto avg_cycles = [&](Addr body) {
        FrontEnd fe(pd);
        const Addr add = body, cmp = body + 3, jne = body + 8;
        Cycles total = 0;
        constexpr int iters = 200;
        for (int i = 0; i < iters; ++i) {
            total += fe.onInst(add, 3);
            total += fe.onInst(cmp, 5);
            total += fe.onInst(jne, 2);
            total += fe.onTakenBranch(jne, jne + 2, add);
        }
        return static_cast<double>(total) / iters;
    };
    double lo = 1e9, hi = 0;
    for (Addr off = 0; off < 128; off += 2) {
        const double c = avg_cycles(0x08048000 + off);
        lo = std::min(lo, c);
        hi = std::max(hi, c);
    }
    // Paper: PD cycles/iteration spread roughly 1.5..4.
    EXPECT_NEAR(lo, 1.5, 0.3);
    EXPECT_GE(hi, 3.0);
    EXPECT_LE(hi, 4.5);
}

TEST(FrontEndTest, SequentialCodeBoundedByDecodeWidth)
{
    const auto &k8 = microArch(Processor::AthlonX2);
    FrontEnd fe(k8);
    // 300 one-byte instructions: at least ceil(300/3) issue cycles.
    Cycles total = 0;
    for (int i = 0; i < 300; ++i)
        total += fe.onInst(0x1000 + static_cast<Addr>(i), 1);
    EXPECT_GE(total, 100u);
    EXPECT_LE(total, 140u); // plus ~1 fetch cycle per 16 bytes
}

TEST(FrontEndTest, RedirectResetsState)
{
    const auto &k8 = microArch(Processor::AthlonX2);
    FrontEnd fe(k8);
    fe.onInst(0x1000, 3);
    fe.redirect(0x2000);
    EXPECT_FALSE(fe.lsdActive());
    // Redirect already steered fetch to the target window: the first
    // instruction there costs no extra fetch cycle...
    EXPECT_EQ(fe.onInst(0x2000, 3), 0u);
    // ...but code in a different window does.
    EXPECT_GE(fe.onInst(0x2040, 3), 1u);
}

} // namespace
} // namespace pca::cpu
