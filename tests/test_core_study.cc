/**
 * @file
 * Tests for the study framework: DataTable, FactorSpace, canned
 * studies, and the guidelines engine.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/datatable.hh"
#include "core/factor_space.hh"
#include "core/guidelines.hh"
#include "core/study.hh"

namespace pca::core
{
namespace
{

using harness::AccessPattern;
using harness::CountingMode;
using harness::Interface;

DataTable
sampleTable()
{
    DataTable t({"proc", "iface"}, "error");
    t.add({"K8", "pm"}, 10);
    t.add({"K8", "pc"}, 2);
    t.add({"CD", "pm"}, 20);
    t.add({"CD", "pc"}, 4);
    t.add({"K8", "pm"}, 12);
    return t;
}

TEST(DataTableTest, AddAndSize)
{
    const DataTable t = sampleTable();
    EXPECT_EQ(t.size(), 5u);
    EXPECT_FALSE(t.empty());
    EXPECT_EQ(t.keyColumns().size(), 2u);
}

TEST(DataTableTest, WrongArityPanics)
{
    DataTable t({"a"}, "v");
    EXPECT_THROW(t.add({"x", "y"}, 1.0), std::logic_error);
}

TEST(DataTableTest, ColumnIndex)
{
    const DataTable t = sampleTable();
    EXPECT_EQ(t.columnIndex("proc"), 0u);
    EXPECT_EQ(t.columnIndex("iface"), 1u);
    EXPECT_THROW(t.columnIndex("nope"), std::logic_error);
}

TEST(DataTableTest, Filtered)
{
    const DataTable t = sampleTable().filtered("proc", "K8");
    EXPECT_EQ(t.size(), 3u);
    for (const auto &row : t.rows())
        EXPECT_EQ(row.keys[0], "K8");
}

TEST(DataTableTest, GroupBy)
{
    const auto groups = sampleTable().groupBy({"iface"});
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].keys[0], "pm");
    EXPECT_EQ(groups[0].values.size(), 3u);
    EXPECT_EQ(groups[1].keys[0], "pc");
    EXPECT_EQ(groups[1].values.size(), 2u);
}

TEST(DataTableTest, GroupByMultipleColumns)
{
    const auto groups = sampleTable().groupBy({"proc", "iface"});
    EXPECT_EQ(groups.size(), 4u);
}

TEST(DataTableTest, ToObservations)
{
    const auto obs = sampleTable().toObservations({"iface"});
    ASSERT_EQ(obs.size(), 5u);
    EXPECT_EQ(obs[0].levels.size(), 1u);
    EXPECT_EQ(obs[0].levels[0], "pm");
    EXPECT_DOUBLE_EQ(obs[0].response, 10.0);
}

TEST(DataTableTest, AppendRequiresSameColumns)
{
    DataTable a({"x"}, "v"), b({"x"}, "v"), c({"y"}, "v");
    a.add({"1"}, 1);
    b.add({"2"}, 2);
    a.append(b);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_THROW(a.append(c), std::logic_error);
}

TEST(DataTableTest, CsvRoundTripShape)
{
    std::ostringstream os;
    sampleTable().writeCsv(os);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("proc,iface,error"), std::string::npos);
    // Header + five rows.
    int lines = 0;
    for (char ch : csv)
        lines += ch == '\n';
    EXPECT_EQ(lines, 6);
}

TEST(DataTableTest, SummaryPrints)
{
    std::ostringstream os;
    sampleTable().printSummary(os, {"iface"});
    EXPECT_NE(os.str().find("median"), std::string::npos);
    EXPECT_NE(os.str().find("pm"), std::string::npos);
}

TEST(FactorSpaceTest, DefaultsCoverPaperSpace)
{
    const auto points = FactorSpace().generate();
    // 3 procs x (4 ifaces * 4 patterns + 2 ifaces * 2 patterns)
    //   x 2 modes x 4 opts x 1 nctr x 1 tsc = 3*20*2*4 = 480.
    EXPECT_EQ(points.size(), 480u);
}

TEST(FactorSpaceTest, PapiHighDropsReadPatterns)
{
    const auto points = FactorSpace()
                            .interfaces({Interface::PHpm})
                            .generate();
    for (const auto &p : points) {
        EXPECT_TRUE(p.pattern == AccessPattern::StartRead ||
                    p.pattern == AccessPattern::StartStop);
    }
}

TEST(FactorSpaceTest, TscOffOnlyForPerfctr)
{
    const auto points = FactorSpace()
                            .interfaces({Interface::Pm, Interface::Pc})
                            .tscSettings({true, false})
                            .generate();
    for (const auto &p : points) {
        if (harness::usesPerfmon(p.iface)) {
            EXPECT_TRUE(p.tsc);
        }
    }
    // But perfctr points do include tsc=off.
    bool saw_off = false;
    for (const auto &p : points)
        saw_off |= !p.tsc;
    EXPECT_TRUE(saw_off);
}

TEST(FactorSpaceTest, CounterCountRespectsProcessor)
{
    const auto points = FactorSpace()
                            .processors({cpu::Processor::Core2Duo})
                            .counterCounts({1, 2, 3, 4})
                            .generate();
    for (const auto &p : points)
        EXPECT_LE(p.numCounters, 2); // CD has 2 programmable counters
}

TEST(FactorSpaceTest, ToHarnessConfigFillsExtras)
{
    FactorPoint p{cpu::Processor::AthlonX2, Interface::Pm,
                  AccessPattern::StartRead, CountingMode::User, 2, 3,
                  true};
    const auto cfg = p.toHarnessConfig(5);
    EXPECT_EQ(cfg.extraEvents.size(), 2u);
    EXPECT_EQ(cfg.optLevel, 2);
    EXPECT_EQ(cfg.seed, 5u);
}

TEST(FactorSpaceTest, Combinations)
{
    EXPECT_EQ(combinations(4, 2).size(), 6u);
    EXPECT_EQ(combinations(5, 0).size(), 1u);
    EXPECT_EQ(combinations(3, 3).size(), 1u);
    const auto c = combinations(3, 2);
    EXPECT_EQ(c[0], (std::vector<int>{0, 1}));
    EXPECT_EQ(c[2], (std::vector<int>{1, 2}));
}

TEST(StudyTest, NullErrorStudyShape)
{
    const auto points = FactorSpace()
                            .processors({cpu::Processor::AthlonX2})
                            .interfaces({Interface::Pm, Interface::Pc})
                            .patterns({AccessPattern::StartRead})
                            .modes({CountingMode::User})
                            .optLevels({2})
                            .generate();
    const auto table = runNullErrorStudy(points, 3);
    EXPECT_EQ(table.size(), points.size() * 3);
    EXPECT_EQ(table.keyColumns().size(), 8u);
    // All errors nonnegative.
    for (double v : table.values())
        EXPECT_GE(v, 0.0);
}

TEST(StudyTest, DurationStudyAndSlopes)
{
    DurationStudyOptions opt;
    opt.processors = {cpu::Processor::AthlonX2};
    opt.interfaces = {Interface::Pm};
    opt.loopSizes = {1, 200000, 400000, 800000};
    opt.runsPerSize = 2;
    const auto table = runDurationStudy(opt);
    EXPECT_EQ(table.size(), 4u * 2u);
    const auto slopes = errorSlopes(table);
    ASSERT_EQ(slopes.size(), 1u);
    EXPECT_EQ(slopes[0].processor, "K8");
    // Positive duration-dependent error in user+kernel mode.
    EXPECT_GT(slopes[0].fit.slope, 0.0);
    EXPECT_LT(slopes[0].fit.slope, 0.01);
}

TEST(StudyTest, UserModeSlopesNearZero)
{
    DurationStudyOptions opt;
    opt.processors = {cpu::Processor::AthlonX2};
    opt.interfaces = {Interface::Pm};
    opt.loopSizes = {1, 500000, 1000000};
    opt.runsPerSize = 2;
    opt.mode = CountingMode::User;
    const auto slopes = errorSlopes(runDurationStudy(opt));
    ASSERT_EQ(slopes.size(), 1u);
    EXPECT_NEAR(slopes[0].fit.slope, 0.0, 1e-5);
}

TEST(StudyTest, CycleStudyShape)
{
    CycleStudyOptions opt;
    opt.processors = {cpu::Processor::AthlonX2};
    opt.interfaces = {Interface::Pm};
    opt.patterns = {AccessPattern::StartRead};
    opt.optLevels = {0, 3};
    opt.loopSizes = {100000};
    opt.runsPerConfig = 1;
    const auto table = runCycleStudy(opt);
    EXPECT_EQ(table.size(), 2u);
    for (double v : table.values()) {
        EXPECT_GT(v, 150000.0); // at least 1.5 cycles/iter
        EXPECT_LT(v, 400000.0); // at most 4 cycles/iter
    }
}

TEST(GuidelinesTest, UserModeRecommendsPerfmonFamily)
{
    GuidelineQuery q;
    q.processor = cpu::Processor::AthlonX2;
    q.mode = CountingMode::User;
    const auto rec = Guidelines(5, 3).recommend(q);
    EXPECT_TRUE(harness::usesPerfmon(rec.best.iface));
    EXPECT_FALSE(rec.ranking.empty());
    EXPECT_LE(rec.best.medianError,
              rec.ranking.back().medianError);
}

TEST(GuidelinesTest, UserKernelModeRecommendsPerfctrFamily)
{
    GuidelineQuery q;
    q.processor = cpu::Processor::AthlonX2;
    q.mode = CountingMode::UserKernel;
    const auto rec = Guidelines(5, 3).recommend(q);
    EXPECT_FALSE(harness::usesPerfmon(rec.best.iface));
}

TEST(GuidelinesTest, PapiConstraintRespected)
{
    GuidelineQuery q;
    q.requirePapi = true;
    const auto rec = Guidelines(5, 3).recommend(q);
    for (const auto &c : rec.ranking) {
        EXPECT_TRUE(harness::isPapiLow(c.iface) ||
                    harness::isPapiHigh(c.iface));
    }
}

TEST(GuidelinesTest, HighLevelConstraintRespected)
{
    GuidelineQuery q;
    q.requireHighLevel = true;
    const auto rec = Guidelines(5, 3).recommend(q);
    for (const auto &c : rec.ranking)
        EXPECT_TRUE(harness::isPapiHigh(c.iface));
}

TEST(GuidelinesTest, NotesIncludeFrequencyScaling)
{
    const auto rec = Guidelines(5, 3).recommend({});
    bool found = false;
    for (const auto &n : rec.notes)
        found |= n.find("governor") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(GuidelinesTest, CycleCautionOnlyWhenMeasuringCycles)
{
    GuidelineQuery q;
    q.measuresCycles = true;
    const auto with_cycles = Guidelines(5, 3).recommend(q);
    q.measuresCycles = false;
    const auto without = Guidelines(5, 3).recommend(q);
    auto mentions_cycles = [](const Recommendation &r) {
        for (const auto &n : r.notes)
            if (n.find("suspicious") != std::string::npos)
                return true;
        return false;
    };
    EXPECT_TRUE(mentions_cycles(with_cycles));
    EXPECT_FALSE(mentions_cycles(without));
}

TEST(GuidelinesTest, PrintMentionsBestInterface)
{
    const auto rec = Guidelines(5, 3).recommend({});
    std::ostringstream os;
    rec.print(os);
    EXPECT_NE(os.str().find("Recommended configuration"),
              std::string::npos);
    EXPECT_NE(os.str().find(harness::interfaceCode(rec.best.iface)),
              std::string::npos);
}

} // namespace
} // namespace pca::core
