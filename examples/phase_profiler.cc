/**
 * @file
 * Sampling-based phase profiling: use the PMU's overflow interrupts
 * (perfmon2 sampling) to find out *where* a program spends its
 * instructions, then verify the profile against counting-mode
 * measurements of each phase — combining the paper's counting
 * accuracy results with the sampling usage model its related work
 * discusses.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "harness/machine.hh"
#include "isa/assembler.hh"
#include "obs/env.hh"
#include "obs/trace.hh"
#include "perfmon/libpfm.hh"
#include "support/strutil.hh"
#include "support/table.hh"

int
main()
{
    using namespace pca;
    using harness::Interface;
    using harness::Machine;
    using harness::MachineConfig;
    using isa::Assembler;
    using isa::Reg;

    // A program with three phases of different weights.
    const Count iters_a = 500000; // 1.5M instructions
    const Count iters_b = 200000; // 0.6M
    const Count iters_c = 300000; // 0.9M

    MachineConfig mc;
    mc.processor = cpu::Processor::AthlonX2;
    mc.iface = Interface::Pm;
    mc.ioInterrupts = false;
    mc.preemptProb = 0.0;
    mc.seed = 20260705;
    Machine m(mc);
    perfmon::LibPfm lib(*m.perfmonModule());

    kernel::PerfmonSamplingSpec spec;
    spec.event = cpu::EventType::InstrRetired;
    spec.pl = PlMask::User;
    spec.period = 5000;

    std::vector<Addr> samples;
    std::vector<Addr> phase_starts;

    Assembler a("main");
    lib.emitInitialize(a);
    lib.emitCreateContext(a);
    lib.emitSetSampling(a, spec);

    // With PCA_TRACE set, each phase also becomes a span in the
    // virtual-time trace (the marker host-ops are only emitted while
    // tracing is on, so the untraced program is unchanged).
    obs::initObservabilityFromEnv();
    auto emit_phase = [&](Reg counter, Count iters,
                          const char *name) {
        if (obs::traceEnabled()) {
            const std::string n(name);
            a.host([n](isa::CpuContext &ctx) {
                obs::tracer().begin(n, "phase", ctx.cycles());
            });
        }
        a.movImm(counter, 0);
        int loop = a.label();
        a.addImm(counter, 1)
            .cmpImm(counter, static_cast<std::int64_t>(iters))
            .jne(loop);
        if (obs::traceEnabled())
            a.host([](isa::CpuContext &ctx) {
                obs::tracer().end(ctx.cycles());
            });
    };
    emit_phase(Reg::Eax, iters_a, "phase A");
    emit_phase(Reg::Ebx, iters_b, "phase B");
    emit_phase(Reg::Esi, iters_c, "phase C");

    lib.emitStop(a);
    lib.emitReadSamples(a, [&samples](const std::vector<Addr> &s) {
        samples = s;
    });
    a.halt();
    const int block = m.addUserBlock(a.take());
    m.finalize();

    // Phase boundaries: the movImm that initializes each counter.
    const auto &blk = m.program().block(block);
    for (std::size_t i = 0; i < blk.size(); ++i) {
        const auto &in = blk.inst(i);
        if (in.op == isa::Opcode::MovImm && in.imm == 0 &&
            (in.r1 == Reg::Eax || in.r1 == Reg::Ebx ||
             in.r1 == Reg::Esi))
            phase_starts.push_back(in.addr);
    }

    m.run();

    // Attribute samples to phases.
    std::vector<std::size_t> hits(3, 0);
    std::size_t outside = 0;
    for (Addr s : samples) {
        if (s >= phase_starts.at(2))
            ++hits[2];
        else if (s >= phase_starts.at(1))
            ++hits[1];
        else if (s >= phase_starts.at(0))
            ++hits[0];
        else
            ++outside;
    }

    const double total_instr =
        3.0 * static_cast<double>(iters_a + iters_b + iters_c) + 3.0;
    const double truth[3] = {
        3.0 * static_cast<double>(iters_a) / total_instr,
        3.0 * static_cast<double>(iters_b) / total_instr,
        3.0 * static_cast<double>(iters_c) / total_instr,
    };

    std::cout << "collected " << samples.size()
              << " instruction samples (period " << spec.period
              << ")\n\n";
    TextTable t({"phase", "true share", "sampled share", "samples"});
    const char *names[3] = {"A (hot loop)", "B (short loop)",
                            "C (medium loop)"};
    for (int p = 0; p < 3; ++p) {
        const double sampled = samples.empty()
            ? 0.0
            : static_cast<double>(hits[static_cast<std::size_t>(p)]) /
                static_cast<double>(samples.size());
        t.addRow({names[p], fmtDouble(100.0 * truth[p], 1) + "%",
                  fmtDouble(100.0 * sampled, 1) + "%",
                  std::to_string(hits[static_cast<std::size_t>(p)])});
    }
    t.print(std::cout);
    std::cout << "(samples outside the three loops: " << outside
              << " — measurement library code)\n\n"
              << "The profile recovers the phase weights to within a "
                 "few percent; each\nsample cost a PMI plus kernel "
                 "handler, perturbing cycles but leaving the\n"
                 "user-mode instruction counts exact (see "
                 "tests/test_sampling.cc).\n";
    return 0;
}
