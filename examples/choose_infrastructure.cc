/**
 * @file
 * Using the guidelines engine (paper §8) to pick a measurement
 * configuration for a concrete analysis task: the engine runs a
 * calibration study on the simulated platform and ranks every
 * admissible (interface, pattern, TSC) combination by measured
 * error.
 */

#include <iostream>

#include "core/guidelines.hh"

int
main()
{
    using namespace pca;
    using core::GuidelineQuery;
    using core::Guidelines;

    Guidelines engine(/*calibration_runs=*/9, /*seed=*/20260705);

    // Task: count user-mode instructions of short code sections on
    // an Athlon, no portability constraints.
    GuidelineQuery q;
    q.processor = cpu::Processor::AthlonX2;
    q.mode = harness::CountingMode::User;
    q.countersNeeded = 2; // instructions + branches
    q.shortSections = true;

    std::cout << "Task: user-mode instruction+branch counts of "
                 "short sections on K8\n\n";
    engine.recommend(q).print(std::cout);

    // Same task, but the tooling must stay portable (PAPI).
    q.requirePapi = true;
    std::cout << "\nSame task, restricted to PAPI for "
                 "portability:\n\n";
    engine.recommend(q).print(std::cout);
    return 0;
}
