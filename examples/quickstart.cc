/**
 * @file
 * Quickstart: measure a micro-benchmark with a chosen counter
 * infrastructure and compare the measured instruction count with the
 * analytical ground truth.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "harness/harness.hh"
#include "harness/microbench.hh"
#include "obs/env.hh"

int
main()
{
    using namespace pca;
    using namespace pca::harness;

    // Optional self-instrumentation: PCA_SPC=all dumps the
    // simulator's software counters at exit, PCA_TRACE=<file> writes
    // a Perfetto-loadable virtual-time trace.
    obs::initObservabilityFromEnv();

    // 1. Describe the measurement: which simulated processor, which
    //    access infrastructure (one of the paper's six), which
    //    pattern, and which privilege levels to count.
    HarnessConfig cfg;
    cfg.processor = cpu::Processor::Core2Duo;
    cfg.iface = Interface::Pc;               // libperfctr, direct
    cfg.pattern = AccessPattern::ReadRead;   // c0=read ... c1=read
    cfg.mode = CountingMode::User;           // user-mode events only
    cfg.tsc = true;                          // fast user-mode reads
    cfg.seed = 1;

    // 2. Pick a benchmark with a known instruction count: the
    //    paper's loop executes exactly 1 + 3*MAX instructions.
    const LoopBench loop(100000);

    // 3. Run. Each measure() boots a fresh simulated machine,
    //    builds the measurement program (library calls + inline
    //    benchmark), and executes it.
    const MeasurementHarness harness(cfg);
    const Measurement m = harness.measure(loop);

    std::cout << "benchmark:            " << loop.name() << " x "
              << loop.iterations() << " iterations\n"
              << "expected instructions: " << m.expected << '\n'
              << "measured c0:           " << m.c0 << '\n'
              << "measured c1:           " << m.c1 << '\n'
              << "measured c-delta:      " << m.delta() << '\n'
              << "measurement error:     " << m.error()
              << " instructions\n\n";

    // 4. The same measurement counting kernel-mode events too: the
    //    error grows (syscalls and interrupt handlers are counted).
    //    The attribution breaks the error down by cause — its
    //    components sum to the error exactly.
    cfg.mode = CountingMode::UserKernel;
    const Measurement uk = MeasurementHarness(cfg).measure(loop);
    std::cout << "user+kernel c-delta:   " << uk.delta() << '\n'
              << "user+kernel error:     " << uk.error()
              << " instructions\n"
              << "error attribution:     " << uk.attribution << '\n'
              << "interrupts during run: " << uk.run.interrupts
              << '\n';

    // 5. Repeat measurements with fresh seeds to see run-to-run
    //    variation (interrupt phase, preemption).
    std::cout << "\nfive repeated user+kernel measurements:";
    for (const auto &rep :
         MeasurementHarness(cfg).measureMany(loop, 5))
        std::cout << ' ' << rep.error();
    std::cout << '\n';
    return 0;
}
