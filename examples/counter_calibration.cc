/**
 * @file
 * Calibrating a measurement setup the way the paper's methodology
 * prescribes (§3.4-3.5): run the null benchmark under your exact
 * configuration to learn the fixed overhead, run the loop benchmark
 * to learn the duration-dependent overhead, then correct real
 * measurements with both.
 *
 * This is the workflow Najafzadeh et al. propose (null probes) made
 * concrete; the example shows that after calibration the corrected
 * counts match the analytical model to within a few instructions.
 */

#include <iostream>

#include "harness/harness.hh"
#include "harness/microbench.hh"
#include "stats/descriptive.hh"
#include "stats/regression.hh"
#include "support/strutil.hh"
#include "support/table.hh"

int
main()
{
    using namespace pca;
    using namespace pca::harness;

    // The configuration we want to calibrate: perfctr, start-read,
    // user+kernel counting on a Core 2 Duo.
    HarnessConfig cfg;
    cfg.processor = cpu::Processor::Core2Duo;
    cfg.iface = Interface::Pc;
    cfg.pattern = AccessPattern::StartRead;
    cfg.mode = CountingMode::UserKernel;

    // --- Step 1: fixed overhead from the null benchmark ---
    std::vector<double> null_errs;
    for (int r = 0; r < 15; ++r) {
        cfg.seed = 100 + static_cast<std::uint64_t>(r);
        null_errs.push_back(static_cast<double>(
            MeasurementHarness(cfg).measure(NullBench{}).error()));
    }
    const double fixed_overhead = stats::median(null_errs);
    std::cout << "fixed overhead (null benchmark median):   "
              << fixed_overhead << " instructions\n";

    // --- Step 2: variable overhead from the loop benchmark ---
    std::vector<double> xs, ys;
    for (Count size : {100000u, 400000u, 700000u, 1000000u}) {
        const LoopBench loop(size);
        for (int r = 0; r < 6; ++r) {
            cfg.seed = 500 + size / 1000 +
                static_cast<std::uint64_t>(r);
            const auto m = MeasurementHarness(cfg).measure(loop);
            xs.push_back(static_cast<double>(size));
            ys.push_back(static_cast<double>(m.error()));
        }
    }
    const auto fit = stats::linearFit(xs, ys);
    std::cout << "variable overhead (loop regression slope): "
              << fmtSci(fit.slope, 3) << " instructions/iteration\n\n";

    // --- Step 3: correct real measurements ---
    std::cout << "applying the calibration to new measurements:\n\n";
    TextTable t({"iters", "raw c-delta", "corrected", "model",
                 "residual"});
    for (Count size : {5000u, 50000u, 500000u, 2000000u}) {
        const LoopBench loop(size);
        cfg.seed = 9000 + size;
        const auto m = MeasurementHarness(cfg).measure(loop);
        const double corrected =
            static_cast<double>(m.delta()) - fixed_overhead -
            fit.slope * static_cast<double>(size);
        const auto model =
            static_cast<double>(loop.expectedInstructions());
        t.addRow({fmtCount(static_cast<long long>(size)),
                  fmtCount(m.delta()),
                  fmtDouble(corrected, 1),
                  fmtCount(static_cast<long long>(model)),
                  fmtDouble(corrected - model, 1)});
    }
    t.print(std::cout);
    std::cout << "\nResiduals within a few tens of instructions "
                 "even for multi-million\ninstruction runs — versus "
                 "raw errors of hundreds to thousands.\n";
    return 0;
}
