/**
 * @file
 * Scenario from the paper's introduction: measuring *short* execution
 * phases (JIT optimization phases, GC phases, signal handlers). The
 * fixed measurement error that is negligible for end-to-end runs
 * dominates when the measured section is only a few thousand
 * instructions long.
 *
 * This example sweeps phase lengths and prints the relative error
 * for a good configuration and a careless one, showing when each
 * becomes trustworthy.
 */

#include <iostream>

#include "harness/harness.hh"
#include "harness/microbench.hh"
#include "stats/descriptive.hh"
#include "support/strutil.hh"
#include "support/table.hh"

int
main()
{
    using namespace pca;
    using namespace pca::harness;

    std::cout << "Profiling short phases: relative error vs phase "
                 "length\n\n";

    // A "JIT phase" of n loop iterations (3n+1 instructions).
    const std::vector<Count> phase_iters = {10,     100,    1000,
                                            10000,  100000, 1000000};

    struct Setup
    {
        const char *label;
        Interface iface;
        AccessPattern pattern;
        CountingMode mode;
    };
    const Setup setups[] = {
        // Careless: PAPI high level, counting kernel events too.
        {"PAPI high level, user+kernel", Interface::PHpm,
         AccessPattern::StartRead, CountingMode::UserKernel},
        // Careful: direct perfmon, read-read, user mode only
        // (Table 3's best user-mode configuration).
        {"libpfm direct, read-read, user", Interface::Pm,
         AccessPattern::ReadRead, CountingMode::User},
    };

    for (const Setup &s : setups) {
        std::cout << "--- " << s.label << " ---\n";
        TextTable t({"phase instrs", "median error", "rel. error"});
        for (Count iters : phase_iters) {
            const LoopBench phase(iters);
            std::vector<double> errs;
            for (int r = 0; r < 7; ++r) {
                HarnessConfig cfg;
                cfg.processor = cpu::Processor::Core2Duo;
                cfg.iface = s.iface;
                cfg.pattern = s.pattern;
                cfg.mode = s.mode;
                cfg.seed = 90 + static_cast<std::uint64_t>(r);
                errs.push_back(static_cast<double>(
                    MeasurementHarness(cfg).measure(phase).error()));
            }
            const double med = stats::median(errs);
            const double expected =
                static_cast<double>(phase.expectedInstructions());
            t.addRow({fmtCount(static_cast<long long>(
                          phase.expectedInstructions())),
                      fmtDouble(med, 1),
                      fmtDouble(100.0 * med / expected, 2) + "%"});
        }
        t.print(std::cout);
        std::cout << '\n';
    }

    std::cout
        << "Reading: with the careless configuration a 3000-"
           "instruction phase is\nmis-measured by ~30%; the careful "
           "configuration pushes that to ~1%.\nFor sub-1000-"
           "instruction phases even the best infrastructure "
           "distorts\nthe result noticeably — the paper's core "
           "warning.\n";
    return 0;
}
